//! Cross-crate checks between the PageRank engine and the structure
//! analytics: both observe the same windows of the same representation, so
//! their per-window vertex/edge accounting must agree, and centrality
//! rankings must correlate sanely on hub-dominated graphs.

use tempopr::analytics::{
    betweenness_window, closeness_window, components_window, kcore_window, temporal_structure,
    StructureConfig,
};
use tempopr::graph::TemporalCsr;
use tempopr::prelude::*;

#[test]
fn pagerank_and_structure_agree_on_active_sets() {
    let log = Dataset::WikiTalk.spec().generate(0.001, 3);
    let span = log.last_time() - log.first_time();
    let spec = WindowSpec::covering(&log, span / 5, span / 15).unwrap();
    let pr = PostmortemEngine::new(&log, spec, PostmortemConfig::default())
        .unwrap()
        .run();
    let st = temporal_structure(&log, spec, &StructureConfig::default()).unwrap();
    for (p, s) in pr.windows.iter().zip(st.iter()) {
        assert_eq!(
            p.stats.active_vertices, s.active_vertices,
            "window {}",
            p.window
        );
        // Every ranked vertex is in some component, and vice versa.
        assert_eq!(p.ranks.as_ref().unwrap().len(), s.active_vertices);
    }
}

#[test]
fn hub_dominates_every_centrality() {
    // A clear hub: vertex 0 connects to everyone; everyone else is sparse.
    let mut events = Vec::new();
    for i in 1..40u32 {
        events.push(Event::new(0, i, i as i64));
    }
    for i in 0..30u32 {
        events.push(Event::new(
            1 + (i * 7) % 39,
            1 + (i * 11) % 39,
            (40 + i) as i64,
        ));
    }
    let log = EventLog::from_unsorted(events, 40).unwrap();
    let t = TemporalCsr::from_log(&log, true);
    let range = TimeRange::new(0, 100);

    // PageRank.
    let (pr, _) = tempopr::kernel::pagerank_window_vec(
        &t,
        &t,
        range,
        Init::Uniform,
        &PrConfig::default(),
        None,
    )
    .unwrap();
    let top_pr = pr
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0;
    assert_eq!(top_pr, 0);

    // Closeness.
    let c = closeness_window(&t, range, 0);
    let top_c = c
        .harmonic
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0;
    assert_eq!(top_c, 0);

    // Betweenness.
    let b = betweenness_window(&t, range);
    let top_b = b
        .score
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0;
    assert_eq!(top_b, 0);

    // The hub's graph is connected.
    let comp = components_window(&t, range);
    assert_eq!(comp.count, 1);

    // Core numbers: the hub's core equals the periphery's max core (a
    // star's core is 1; the extra edges raise it, but never above the hub).
    let k = kcore_window(&t, range);
    assert!(k.core[0] >= 1);
    assert_eq!(
        k.core[0],
        k.core.iter().copied().max().unwrap(),
        "hub is in the innermost core"
    );
}

#[test]
fn structure_metrics_track_window_motion() {
    // As the window slides across a growing graph, edges and triangles
    // must never be negative and must match a direct recount.
    let log = Dataset::StackOverflow.spec().generate(0.0003, 8);
    let span = log.last_time() - log.first_time();
    let spec = WindowSpec::covering(&log, span / 6, span / 12).unwrap();
    let st = temporal_structure(&log, spec, &StructureConfig::default()).unwrap();
    let t = TemporalCsr::from_log(&log, true);
    for s in &st {
        let range = spec.window(s.window);
        assert_eq!(
            s.edges,
            t.active_edge_count(range) / 2,
            "window {}",
            s.window
        );
        assert_eq!(
            s.active_vertices,
            t.active_vertex_count(range),
            "window {}",
            s.window
        );
    }
}
