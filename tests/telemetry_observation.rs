//! Telemetry is observation-only: attaching an enabled sink must not
//! perturb the computation. Every driver (postmortem engine, offline
//! baseline, streaming baseline) is run twice on the same workload — once
//! with a noop sink, once recording — and the PageRank outputs must be
//! *bit-identical*, across every kernel × parallel-mode combination.
//!
//! This is a strong claim and it holds because the observation hooks sit
//! outside the numeric path (they read residuals/masses already computed
//! for convergence) and the schedulers reduce over a fixed chunk
//! structure regardless of work stealing.

use tempopr::core::run_offline_traced;
use tempopr::prelude::*;
use tempopr::stream::run_streaming_traced;

/// Hub-skewed temporal graph: far-from-uniform stationary distribution,
/// so every window iterates several times and the trace is non-trivial.
fn skewed_log() -> EventLog {
    let mut events = Vec::new();
    for i in 0..600u32 {
        let (u, v) = if i % 3 != 0 {
            (0, 1 + i % 29)
        } else {
            (1 + (i * 7) % 29, 1 + (i * 13) % 29)
        };
        if u != v {
            events.push(Event::new(u, v, i as i64));
        }
    }
    EventLog::from_unsorted(events, 30).unwrap()
}

fn spec_for(log: &EventLog) -> WindowSpec {
    WindowSpec::covering(log, 200, 50).unwrap()
}

fn base_cfg(kernel: KernelKind, mode: ParallelMode) -> PostmortemConfig {
    PostmortemConfig {
        kernel,
        mode,
        num_multiwindows: 2,
        retain: RetainMode::Full,
        ..Default::default()
    }
}

/// Asserts two runs are the same computation to the last bit: same
/// statuses, same iteration counts, same fingerprints, same rank vectors.
fn assert_bit_identical(noop: &RunOutput, traced: &RunOutput, what: &str) {
    assert_eq!(noop.windows.len(), traced.windows.len(), "{what}: windows");
    for (x, y) in noop.windows.iter().zip(&traced.windows) {
        assert_eq!(x.status, y.status, "{what}: status of window {}", x.window);
        assert_eq!(
            x.stats.iterations, y.stats.iterations,
            "{what}: iterations of window {}",
            x.window
        );
        assert_eq!(
            x.fingerprint.to_bits(),
            y.fingerprint.to_bits(),
            "{what}: fingerprint of window {}",
            x.window
        );
        assert_eq!(x.ranks, y.ranks, "{what}: ranks of window {}", x.window);
    }
}

#[test]
fn postmortem_enabled_vs_noop_bit_identical() {
    let log = skewed_log();
    let spec = spec_for(&log);
    for kernel in [
        KernelKind::SpMV,
        KernelKind::SpMM { lanes: 4 },
        KernelKind::PushBlocking,
    ] {
        for mode in [
            ParallelMode::Sequential,
            ParallelMode::WindowLevel,
            ParallelMode::ApplicationLevel,
            ParallelMode::Nested,
        ] {
            let cfg = base_cfg(kernel, mode);
            let noop = PostmortemEngine::new(&log, spec, cfg.clone())
                .unwrap()
                .run();
            let tele = Telemetry::enabled();
            let traced = PostmortemEngine::with_telemetry(&log, spec, cfg, tele.clone())
                .unwrap()
                .run();
            assert_bit_identical(&noop, &traced, &format!("{kernel:?}/{mode:?}"));
            let report = tele.report();
            assert_eq!(report.counter("windows.total"), spec.count as u64);
            assert!(report.counter("iterations.total") > 0);
        }
    }
}

#[test]
fn offline_enabled_vs_noop_bit_identical() {
    let log = skewed_log();
    let spec = spec_for(&log);
    let cfg = OfflineConfig {
        retain: RetainMode::Full,
        ..Default::default()
    };
    let noop = run_offline(&log, spec, &cfg).unwrap();
    let tele = Telemetry::enabled();
    let traced = run_offline_traced(&log, spec, &cfg, &tele).unwrap();
    assert_bit_identical(&noop, &traced, "offline");
    let report = tele.report();
    assert_eq!(report.counter("windows.total"), spec.count as u64);
    assert!(report.counter("iterations.total") > 0);
}

#[test]
fn streaming_enabled_vs_noop_bit_identical() {
    let log = skewed_log();
    let spec = spec_for(&log);
    for incremental in [
        IncrementalMode::Recompute,
        IncrementalMode::WarmRestart,
        IncrementalMode::LocalPush,
    ] {
        let cfg = StreamingConfig {
            incremental,
            retain: RetainMode::Full,
            ..Default::default()
        };
        let noop = run_streaming(&log, spec, &cfg).unwrap();
        let tele = Telemetry::enabled();
        let traced = run_streaming_traced(&log, spec, &cfg, &tele).unwrap();
        assert_bit_identical(&noop, &traced, &format!("streaming/{incremental:?}"));
        assert_eq!(tele.report().counter("windows.total"), spec.count as u64);
    }
}

#[test]
fn report_and_trace_carry_schema_and_accounting() {
    let log = skewed_log();
    let spec = spec_for(&log);
    let tele = Telemetry::enabled();
    let cfg = base_cfg(KernelKind::SpMV, ParallelMode::WindowLevel);
    let out = PostmortemEngine::with_telemetry(&log, spec, cfg, tele.clone())
        .unwrap()
        .run();
    assert!(!out.degraded);

    let report = tele.report();
    // Status counters reconcile with the window count.
    let terminal = report.counter("windows.ok")
        + report.counter("windows.recovered")
        + report.counter("windows.failed");
    assert_eq!(terminal, spec.count as u64);
    assert_eq!(report.counter("windows.total"), spec.count as u64);
    // Phase timers actually accumulated wall time.
    assert!(report.phase_ns_total() > 0);
    // Memory accounting is present and plausible.
    let bytes = report.gauge("memory.multiwindow_bytes").unwrap();
    assert!(bytes > 0.0);
    assert_eq!(report.gauge("run.degraded"), Some(0.0));

    // Versioned schemas on both exports.
    assert!(report.to_json().contains("tempopr.metrics.v1"));
    assert!(tele
        .trace()
        .deterministic_json()
        .contains("tempopr.trace.v1"));

    // A noop sink records nothing and exports empty-but-valid documents.
    let off = Telemetry::noop();
    assert!(!off.is_enabled());
    assert_eq!(off.report().counter("windows.total"), 0);
    assert!(off.report().to_json().contains("tempopr.metrics.v1"));
}
