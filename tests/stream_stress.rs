//! Heavier randomized stress of the streaming store: long mixed
//! insert/delete workloads with skewed (hub-heavy) endpoints, verified
//! against a multiset model and the structural invariants after every
//! phase. Complements the per-module unit tests and the bounded proptests
//! with a deeper single run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use tempopr::core::{FaultPlan, RetainMode, WindowFault, WindowStatus};
use tempopr::graph::{Event, EventLog, WindowSpec};
use tempopr::kernel::FaultKind;
use tempopr::stream::{
    run_streaming, run_streaming_traced, IncrementalMode, StreamingConfig, StreamingGraph,
};
use tempopr::telemetry::Telemetry;

fn canon(u: u32, v: u32) -> (u32, u32) {
    (u.min(v), u.max(v))
}

#[test]
fn long_skewed_insert_delete_stress() {
    let n = 200u32;
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut g = StreamingGraph::new(n as usize);
    let mut model: HashMap<(u32, u32), u32> = HashMap::new();
    let mut live: Vec<(u32, u32)> = Vec::new();

    // Hub-heavy endpoint sampler: low ids are hot, mirroring the power-law
    // degree structure the real workloads have.
    let sample = move |rng: &mut StdRng| -> u32 {
        let x: f64 = rng.gen::<f64>();
        ((n as f64) * x * x * x) as u32
    };

    for phase in 0..4 {
        // Insert-heavy phase.
        for step in 0..10_000 {
            let u = sample(&mut rng);
            let v = sample(&mut rng);
            g.insert_event(u, v, (phase * 10_000 + step) as i64);
            *model.entry(canon(u, v)).or_insert(0) += 1;
            live.push(canon(u, v));
        }
        g.check_invariants();
        // Delete-heavy phase: remove ~80% of live events in random order.
        let deletions = live.len() * 4 / 5;
        for _ in 0..deletions {
            let i = rng.gen_range(0..live.len());
            let (a, b) = live.swap_remove(i);
            assert!(g.delete_event(a, b));
            let m = model.get_mut(&(a, b)).unwrap();
            *m -= 1;
            if *m == 0 {
                model.remove(&(a, b));
            }
        }
        g.check_invariants();
    }

    // Final exact comparison against the model.
    let mut total_edges = 0usize;
    for (&(u, v), &mult) in &model {
        assert_eq!(g.multiplicity(u, v), mult, "pair ({u},{v})");
        total_edges += if u == v { 1 } else { 2 };
    }
    assert_eq!(g.num_edges(), total_edges);
    // Degrees match distinct live neighbors.
    for v in 0..n {
        let distinct = model.keys().filter(|&&(a, b)| a == v || b == v).count();
        assert_eq!(g.degree(v) as usize, distinct, "degree of {v}");
    }
    // Drain completely; arena must be fully recyclable.
    for ((u, v), mult) in model.drain() {
        for _ in 0..mult {
            assert!(g.delete_event(u, v));
        }
    }
    g.check_invariants();
    assert_eq!(g.num_edges(), 0);
    let blocks_before = g.allocated_blocks();
    // Reinsert a burst; no new arena growth beyond what existed.
    for i in 0..1_000u32 {
        g.insert_event(i % n, (i * 7 + 1) % n, i as i64);
    }
    g.check_invariants();
    assert!(
        g.allocated_blocks() <= blocks_before.max(1_000),
        "arena should reuse freed blocks"
    );
}

/// Hub-skewed temporal log long enough for a dozen windows: every window
/// is far from uniform, so warm restarts matter and faults actually fire.
fn skewed_replay_log() -> EventLog {
    let mut events = Vec::new();
    for i in 0..2_000u32 {
        let (u, v) = if i % 3 != 0 {
            (0, 1 + i % 37)
        } else {
            (1 + (i * 7) % 37, 1 + (i * 13) % 37)
        };
        if u != v {
            events.push(Event::new(u, v, i as i64));
        }
    }
    EventLog::from_unsorted(events, 38).unwrap()
}

/// Drives the streaming replay through several faulted windows (a NaN
/// injection, a kernel panic, and a corrupted reciprocal) under warm
/// restarts: every faulted window must fail in isolation, every successor
/// must cold-restart to a valid fixed point agreeing with the fault-free
/// run to convergence tolerance, and the telemetry books must balance.
#[test]
fn multi_fault_replay_recovers_each_time() {
    let log = skewed_replay_log();
    let spec = WindowSpec::covering(&log, 400, 150).unwrap();
    assert!(spec.count >= 8, "want a long replay, got {}", spec.count);
    let base = StreamingConfig {
        incremental: IncrementalMode::WarmRestart,
        retain: RetainMode::Full,
        ..Default::default()
    };
    let clean = run_streaming(&log, spec, &base).unwrap();
    assert!(!clean.degraded);

    let faulted = [2usize, 5, 7];
    let cfg = StreamingConfig {
        faults: FaultPlan {
            faults: vec![
                WindowFault {
                    window: faulted[0],
                    fault: FaultKind::InjectNan { at_iter: 1 },
                },
                WindowFault {
                    window: faulted[1],
                    fault: FaultKind::PanicInKernel,
                },
                WindowFault {
                    window: faulted[2],
                    fault: FaultKind::CorruptReciprocal,
                },
            ],
            crash_after_checkpoint: None,
        },
        ..base
    };
    let tele = Telemetry::enabled();
    let out = run_streaming_traced(&log, spec, &cfg, &tele).unwrap();
    assert!(out.degraded);
    assert_eq!(out.failed_windows(), faulted.to_vec());

    for (x, y) in clean.windows.iter().zip(&out.windows) {
        if faulted.contains(&x.window) {
            assert!(matches!(y.status, WindowStatus::Failed { .. }));
            continue;
        }
        assert_eq!(x.status, y.status, "window {}", x.window);
        // Warm-started (clean) and cold-restarted (faulty) iterates reach
        // the same fixed point only to convergence tolerance, not bitwise.
        let dist = x
            .ranks
            .as_ref()
            .unwrap()
            .linf_distance(y.ranks.as_ref().unwrap());
        assert!(dist <= 1e-6, "window {}: linf {dist:.3e}", x.window);
    }

    let report = tele.report();
    assert_eq!(report.counter("windows.failed"), faulted.len() as u64);
    assert_eq!(
        report.counter("windows.ok"),
        (spec.count - faulted.len()) as u64
    );
    // Each failure breaks the warm-start chain exactly once, and each
    // faulted window has a successor here.
    assert_eq!(
        report.counter("recovery.cold_restart"),
        faulted.len() as u64
    );
    assert_eq!(report.gauge("run.degraded"), Some(1.0));
    assert!(report.gauge("memory.stream_bytes").unwrap() > 0.0);
    // The faulted windows' partial iteration traces survive alongside the
    // terminal markers — the failure is diagnosable postmortem.
    let json = tele.trace().deterministic_json();
    for w in faulted {
        assert!(
            json.lines()
                .any(|l| l.contains(&format!("\"window\": {w},"))
                    && l.contains("\"kind\": \"window_failed\"")),
            "window {w} missing terminal failed marker"
        );
    }
}

#[test]
fn block_chain_growth_and_shrink_cycles() {
    // One vertex's chain repeatedly grown to hundreds of neighbors and
    // shrunk to zero: exercises block unlink ordering at every position.
    let mut g = StreamingGraph::new(600);
    for cycle in 0..5 {
        let count = 100 + cycle * 97;
        for v in 1..=count {
            g.insert_event(0, v as u32, v as i64);
        }
        g.check_invariants();
        assert_eq!(g.degree(0), count as u32);
        // Delete in an interleaved order to hit head/middle/tail blocks.
        let mut order: Vec<u32> = (1..=count as u32).collect();
        order.reverse();
        let (evens, odds): (Vec<u32>, Vec<u32>) = order.iter().copied().partition(|&v| v % 2 == 0);
        for v in evens.into_iter().chain(odds) {
            assert!(g.delete_event(0, v));
        }
        g.check_invariants();
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.neighbors(0).count(), 0);
    }
}
