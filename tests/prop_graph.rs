//! Property-based tests of the graph layer: the temporal CSR and the
//! multi-window partition must present exactly the same per-window edges as
//! a brute-force filter of the event list, for arbitrary events and window
//! parameters.

use proptest::prelude::*;
use tempopr::graph::{Event, EventLog, MultiWindowSet, PartitionStrategy, TemporalCsr, WindowSpec};

const MAX_V: u32 = 24;

fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(
        (0..MAX_V, 0..MAX_V, 0i64..500).prop_map(|(u, v, t)| Event::new(u, v, t)),
        1..200,
    )
}

/// Brute-force symmetric directed edge set of a window.
fn brute_edges(events: &[Event], start: i64, end: i64) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for e in events {
        if e.t >= start && e.t <= end {
            out.push((e.u, e.v));
            if e.u != e.v {
                out.push((e.v, e.u));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tcsr_window_edges_match_bruteforce(events in arb_events(), start in 0i64..500, width in 1i64..300) {
        let t = TemporalCsr::from_events(MAX_V as usize, &events, true);
        let range = tempopr::graph::TimeRange::new(start, start + width);
        let mut got = Vec::new();
        for v in 0..MAX_V {
            for n in t.active_neighbors(v, range) {
                got.push((v, n));
            }
        }
        got.sort_unstable();
        let expect = brute_edges(&events, range.start, range.end);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn tcsr_degrees_and_counts_consistent(events in arb_events(), start in 0i64..500, width in 1i64..300) {
        let t = TemporalCsr::from_events(MAX_V as usize, &events, true);
        let range = tempopr::graph::TimeRange::new(start, start + width);
        let mut deg = vec![0u32; MAX_V as usize];
        t.active_degrees(range, &mut deg);
        let total: usize = deg.iter().map(|&d| d as usize).sum();
        prop_assert_eq!(total, t.active_edge_count(range));
        let active = deg.iter().filter(|&&d| d > 0).count();
        prop_assert_eq!(active, t.active_vertex_count(range));
        // Degrees match brute force.
        let edges = brute_edges(&events, range.start, range.end);
        for (v, &d) in deg.iter().enumerate() {
            let expect = edges.iter().filter(|&&(u, _)| u == v as u32).count();
            prop_assert_eq!(d as usize, expect, "vertex {}", v);
        }
    }

    #[test]
    fn multiwindow_presents_same_edges_as_single_tcsr(
        events in arb_events(),
        delta in 5i64..200,
        sw in 1i64..100,
        parts in 1usize..8,
        strategy_equal_events in any::<bool>(),
    ) {
        let n = MAX_V as usize;
        let log = EventLog::from_unsorted(events.clone(), n).unwrap();
        let spec = WindowSpec::covering(&log, delta, sw).unwrap();
        let strategy = if strategy_equal_events {
            PartitionStrategy::EqualEvents
        } else {
            PartitionStrategy::EqualWindows
        };
        let set = MultiWindowSet::build(&log, spec, parts, true, strategy).unwrap();
        for w in 0..spec.count {
            let range = spec.window(w);
            let part = set.part_of(w);
            let mut got = Vec::new();
            for lv in 0..part.num_local_vertices() as u32 {
                for ln in part.tcsr().active_neighbors(lv, range) {
                    got.push((part.global_id(lv), part.global_id(ln)));
                }
            }
            got.sort_unstable();
            let expect = brute_edges(log.events(), range.start, range.end);
            prop_assert_eq!(got, expect, "window {}", w);
        }
    }

    #[test]
    fn event_log_slices_match_filter(events in arb_events(), start in -50i64..550, width in 0i64..600) {
        let log = EventLog::from_unsorted(events, MAX_V as usize).unwrap();
        let got = log.slice_by_time(start, start + width);
        let expect: Vec<Event> = log
            .events()
            .iter()
            .copied()
            .filter(|e| e.t >= start && e.t <= start + width)
            .collect();
        prop_assert_eq!(got, &expect[..]);
    }

    #[test]
    fn window_spec_covers_all_events(events in arb_events(), delta in 1i64..300, sw in 1i64..150) {
        let log = EventLog::from_unsorted(events, MAX_V as usize).unwrap();
        let spec = WindowSpec::covering(&log, delta, sw).unwrap();
        // Every window starts within the data.
        prop_assert!(spec.window(spec.count - 1).start <= log.last_time());
        // A further window would start past the data.
        let next_start = spec.t0 + spec.count as i64 * spec.sw;
        prop_assert!(next_start > log.last_time());
        // The first window starts exactly at the first event.
        prop_assert_eq!(spec.window(0).start, log.first_time());
    }

    #[test]
    fn transpose_is_involution_on_directed_tcsr(events in arb_events()) {
        let t = TemporalCsr::from_events(MAX_V as usize, &events, false);
        let tt = t.transpose().transpose();
        prop_assert_eq!(t, tt);
    }
}
