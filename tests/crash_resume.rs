//! Crash-fault injection and corruption-tolerant resume, end to end, for
//! all three drivers.
//!
//! The crash tests re-execute this test binary as a subprocess
//! (`crash_helper`, driven by `TEMPOPR_CRASH_*` env vars) with
//! `FaultPlan::crash_after_checkpoint` armed: the child aborts — a
//! deterministic `kill -9` — right after window *k*'s checkpoint record
//! becomes durable. The parent then resumes from the surviving manifest
//! in-process and requires the combined output to be *bit-identical*
//! (fingerprints compared as `f64::to_bits`) to an uninterrupted run of
//! the same configuration.
//!
//! The corruption tests damage a completed manifest in place (bit flips,
//! torn tails, stale version headers) and require recovery to fall back to
//! the longest valid prefix — never panicking, never producing different
//! ranks — or to refuse loudly when the header itself is unusable.

use std::path::{Path, PathBuf};
use tempopr::core::checkpoint::{CheckpointError, MANIFEST_NAME};
use tempopr::prelude::*;

fn test_log() -> EventLog {
    let mut events = Vec::new();
    for i in 0..500u32 {
        let u = (i * 11 + 1) % 26;
        let v = (i * 5 + 7) % 26;
        if u != v {
            events.push(Event::new(u, v, i as i64));
        }
    }
    EventLog::from_unsorted(events, 26).unwrap()
}

fn tight_pr() -> PrConfig {
    PrConfig {
        alpha: 0.15,
        tol: 1e-10,
        max_iters: 500,
        ..PrConfig::default()
    }
}

/// Runs one named driver configuration under the given checkpoint options.
/// The crash run and its resume must build configs through this single
/// function so their compatibility hashes agree.
fn run_case(
    case: &str,
    opts: &CheckpointOptions,
    crash_at: Option<usize>,
) -> Result<RunOutput, EngineError> {
    let log = test_log();
    let spec = WindowSpec::covering(&log, 120, 40).unwrap();
    assert!(
        spec.count >= 8,
        "workload too small: {} windows",
        spec.count
    );
    match case {
        "pm" | "pm_warm_pipe" | "pm_spmm_warm" => {
            let mut cfg = PostmortemConfig {
                num_multiwindows: 3,
                mode: ParallelMode::ApplicationLevel,
                kernel: KernelKind::SpMV,
                pr: tight_pr(),
                ..PostmortemConfig::default()
            };
            match case {
                "pm_warm_pipe" => {
                    cfg.init_mode = InitMode::Warm;
                    cfg.pipeline = true;
                }
                "pm_spmm_warm" => {
                    cfg.mode = ParallelMode::Sequential;
                    cfg.kernel = KernelKind::SpMM { lanes: 4 };
                    cfg.init_mode = InitMode::Warm;
                }
                _ => {}
            }
            cfg.faults.crash_after_checkpoint = crash_at;
            let engine = PostmortemEngine::new(&log, spec, cfg)?;
            engine.run_durable(opts)
        }
        "offline" => {
            let mut cfg = OfflineConfig {
                pr: tight_pr(),
                ..OfflineConfig::default()
            };
            cfg.faults.crash_after_checkpoint = crash_at;
            run_offline_durable(&log, spec, &cfg, opts, &Telemetry::noop())
        }
        "streaming" => {
            // One injected non-convergence: the run carries a Failed
            // window and a cold restart, both of which must survive the
            // checkpoint round-trip.
            let mut cfg = StreamingConfig {
                pr: tight_pr(),
                faults: FaultPlan::single(1, FaultKind::ForceNonConvergence),
                ..StreamingConfig::default()
            };
            cfg.faults.crash_after_checkpoint = crash_at;
            run_streaming_durable(&log, spec, &cfg, opts, &Telemetry::noop())
        }
        other => panic!("unknown case {other}"),
    }
}

/// Re-executed entry point: runs a case with crash injection armed and
/// must die doing it. A no-op without the env vars (the normal test run).
#[test]
fn crash_helper() {
    let Ok(dir) = std::env::var("TEMPOPR_CRASH_DIR") else {
        return;
    };
    let case = std::env::var("TEMPOPR_CRASH_CASE").unwrap();
    let at: usize = std::env::var("TEMPOPR_CRASH_AT").unwrap().parse().unwrap();
    let every: usize = std::env::var("TEMPOPR_CRASH_EVERY")
        .unwrap()
        .parse()
        .unwrap();
    let opts = CheckpointOptions {
        dir: Some(PathBuf::from(dir)),
        every,
        resume: None,
    };
    let _ = run_case(&case, &opts, Some(at));
    unreachable!("crash injection at window {at} did not fire");
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tempopr_crash_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_crash(case: &str, dir: &Path, at: usize, every: usize) {
    let exe = std::env::current_exe().unwrap();
    let status = std::process::Command::new(exe)
        .args(["crash_helper", "--exact", "--nocapture"])
        .env("TEMPOPR_CRASH_DIR", dir)
        .env("TEMPOPR_CRASH_CASE", case)
        .env("TEMPOPR_CRASH_AT", at.to_string())
        .env("TEMPOPR_CRASH_EVERY", every.to_string())
        .status()
        .unwrap();
    assert!(
        !status.success(),
        "{case}: the crash-injected child exited cleanly"
    );
}

fn fingerprints(out: &RunOutput) -> Vec<u64> {
    out.windows
        .iter()
        .map(|w| w.fingerprint.to_bits())
        .collect()
}

fn assert_bit_identical(case: &str, baseline: &RunOutput, resumed: &RunOutput) {
    assert_eq!(
        fingerprints(baseline),
        fingerprints(resumed),
        "{case}: resumed fingerprints diverge from the uninterrupted run"
    );
    for (a, b) in baseline.windows.iter().zip(resumed.windows.iter()) {
        assert_eq!(a.window, b.window);
        assert_eq!(a.status, b.status, "{case}: window {} status", a.window);
        assert_eq!(a.ranks, b.ranks, "{case}: window {} ranks", a.window);
    }
    assert_eq!(baseline.degraded, resumed.degraded);
}

/// Kill at window `at`, resume, compare against uninterrupted — the core
/// acceptance loop, shared by the per-driver tests below.
fn crash_resume_roundtrip(case: &str, at: usize, every: usize) {
    let dir = tmp_dir(case);
    let baseline = run_case(case, &CheckpointOptions::default(), None).unwrap();
    spawn_crash(case, &dir, at, every);
    let manifest = dir.join(MANIFEST_NAME);
    assert!(
        std::fs::metadata(&manifest).unwrap().len() > 60,
        "{case}: no records survived the crash"
    );
    // Resume writing into the same directory (the realistic restart), so
    // the manifest is left complete for the second, skip-everything pass.
    let resumed = run_case(
        case,
        &CheckpointOptions {
            dir: Some(dir.clone()),
            every: 1,
            resume: Some(dir.clone()),
        },
        None,
    )
    .unwrap();
    assert_bit_identical(case, &baseline, &resumed);
    // Resuming the now-complete manifest recomputes nothing and must still
    // reproduce the run record-for-record.
    let restored = run_case(
        case,
        &CheckpointOptions {
            dir: None,
            every: 1,
            resume: Some(dir.clone()),
        },
        None,
    )
    .unwrap();
    assert_bit_identical(case, &baseline, &restored);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn postmortem_crash_resume_is_bit_identical() {
    crash_resume_roundtrip("pm", 2, 1);
}

#[test]
fn postmortem_warm_pipelined_crash_resume_is_bit_identical() {
    crash_resume_roundtrip("pm_warm_pipe", 3, 1);
}

#[test]
fn postmortem_spmm_resume_clips_to_part_boundary() {
    // Window 4 sits mid-part (3 parts over >= 8 windows): resume must clip
    // the prefix down to the part boundary and recompute the partial part
    // whole, still bit-identically.
    crash_resume_roundtrip("pm_spmm_warm", 4, 1);
}

#[test]
fn offline_crash_resume_is_bit_identical_batched() {
    // every=8 exercises the batched flush: the crash loses the buffered
    // tail beyond the forced flush, and resume recomputes it.
    crash_resume_roundtrip("offline", 3, 8);
}

#[test]
fn streaming_crash_resume_replays_store_and_failure_chain() {
    // Crash two windows after the injected failure: the resumed run must
    // reproduce the Failed window, the cold restart, and the warm-start
    // chain from the store replay alone.
    crash_resume_roundtrip("streaming", 3, 1);
}

/// Writes a complete manifest for `case` and returns (dir, baseline).
fn completed_manifest(case: &str, name: &str) -> (PathBuf, RunOutput) {
    let dir = tmp_dir(name);
    let baseline = run_case(
        case,
        &CheckpointOptions {
            dir: Some(dir.clone()),
            every: 1,
            resume: None,
        },
        None,
    )
    .unwrap();
    (dir, baseline)
}

#[test]
fn bit_flip_in_records_falls_back_to_valid_prefix() {
    let (dir, baseline) = completed_manifest("offline", "bitflip");
    let len = std::fs::metadata(dir.join(MANIFEST_NAME)).unwrap().len() as usize;
    // Flip a bit inside the last record's payload: the CRC walk must
    // discard that record (and only resume the shorter prefix).
    corrupt_manifest(&dir, CorruptionKind::BitFlip { offset: len - 9 }).unwrap();
    let resumed = run_case(
        "offline",
        &CheckpointOptions {
            dir: None,
            every: 1,
            resume: Some(dir.clone()),
        },
        None,
    )
    .unwrap();
    assert_bit_identical("bitflip", &baseline, &resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_falls_back_to_valid_prefix() {
    let (dir, baseline) = completed_manifest("streaming", "torn");
    let len = std::fs::metadata(dir.join(MANIFEST_NAME)).unwrap().len() as usize;
    corrupt_manifest(&dir, CorruptionKind::Truncate { len: len - 5 }).unwrap();
    let resumed = run_case(
        "streaming",
        &CheckpointOptions {
            dir: None,
            every: 1,
            resume: Some(dir.clone()),
        },
        None,
    )
    .unwrap();
    assert_bit_identical("torn", &baseline, &resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_version_header_is_refused_as_incompatible() {
    let (dir, _) = completed_manifest("pm", "stale");
    corrupt_manifest(&dir, CorruptionKind::StaleVersion).unwrap();
    let err = run_case(
        "pm",
        &CheckpointOptions {
            dir: None,
            every: 1,
            resume: Some(dir.clone()),
        },
        None,
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::Checkpoint(CheckpointError::Incompatible(_))
        ),
        "expected Incompatible, got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_header_is_refused_not_resumed() {
    let (dir, _) = completed_manifest("pm", "hdrflip");
    // Offset 10 lands in the header's config-hash field: the header CRC
    // must reject the whole manifest (no torn-tail tolerance there).
    corrupt_manifest(&dir, CorruptionKind::BitFlip { offset: 10 }).unwrap();
    let err = run_case(
        "pm",
        &CheckpointOptions {
            dir: None,
            every: 1,
            resume: Some(dir.clone()),
        },
        None,
    )
    .unwrap_err();
    assert!(
        matches!(err, EngineError::Checkpoint(CheckpointError::Corrupt(_))),
        "expected Corrupt, got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_driver_manifest_is_incompatible() {
    // A manifest written by the offline driver must not seed a streaming
    // resume: the identity check names the driver field.
    let (dir, _) = completed_manifest("offline", "crossdriver");
    let err = run_case(
        "streaming",
        &CheckpointOptions {
            dir: None,
            every: 1,
            resume: Some(dir.clone()),
        },
        None,
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::Checkpoint(CheckpointError::Incompatible(_))
        ),
        "expected Incompatible, got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
