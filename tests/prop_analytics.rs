//! Property-based tests of the analytics kernels against brute force, for
//! arbitrary temporal graphs and windows.

use proptest::prelude::*;
use std::collections::VecDeque;
use tempopr::analytics::{
    betweenness_window, closeness_window, components_window, connected, degree_stats, katz_window,
    kcore_window, triangles_window, KatzConfig,
};
use tempopr::graph::{Event, TemporalCsr, TimeRange};

const MAX_V: u32 = 14;

fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(
        (0..MAX_V, 0..MAX_V, 0i64..200).prop_map(|(u, v, t)| Event::new(u, v, t)),
        1..100,
    )
}

/// Window adjacency as a symmetric boolean matrix (self-loops excluded —
/// they never affect connectivity, cores, paths, or triangles).
fn window_adj(events: &[Event], range: TimeRange) -> Vec<Vec<bool>> {
    let n = MAX_V as usize;
    let mut adj = vec![vec![false; n]; n];
    for e in events {
        if range.contains(e.t) && e.u != e.v {
            adj[e.u as usize][e.v as usize] = true;
            adj[e.v as usize][e.u as usize] = true;
        }
    }
    adj
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn components_match_bfs(events in arb_events(), start in 0i64..200, width in 1i64..150) {
        let t = TemporalCsr::from_events(MAX_V as usize, &events, true);
        let range = TimeRange::new(start, start + width);
        let c = components_window(&t, range);
        let adj = window_adj(&events, range);
        // Self-loop-only vertices are active in the TCSR but isolated in
        // `adj`; fold them in as single-vertex components.
        let n = MAX_V as usize;
        let mut self_loop_only = vec![false; n];
        for e in &events {
            if range.contains(e.t) && e.u == e.v {
                self_loop_only[e.u as usize] = true;
            }
        }
        let mut seen = vec![u32::MAX; n];
        let mut count = 0;
        let mut largest = 0;
        for s in 0..n {
            let isolated_active = self_loop_only[s] && !adj[s].iter().any(|&b| b);
            if seen[s] != u32::MAX || (!adj[s].iter().any(|&b| b) && !isolated_active) {
                continue;
            }
            count += 1;
            let mut size = 0;
            let mut q = VecDeque::from([s]);
            seen[s] = s as u32;
            while let Some(v) = q.pop_front() {
                size += 1;
                for u in 0..n {
                    if adj[v][u] && seen[u] == u32::MAX {
                        seen[u] = s as u32;
                        q.push_back(u);
                    }
                }
            }
            largest = largest.max(size);
        }
        prop_assert_eq!(c.count, count);
        prop_assert_eq!(c.largest, largest);
        for a in 0..MAX_V {
            for b in 0..MAX_V {
                let expect = seen[a as usize] != u32::MAX
                    && seen[a as usize] == seen[b as usize];
                prop_assert_eq!(connected(&c, a, b), expect, "pair ({}, {})", a, b);
            }
        }
    }

    #[test]
    fn kcore_is_valid_decomposition(events in arb_events(), start in 0i64..200, width in 1i64..150) {
        let t = TemporalCsr::from_events(MAX_V as usize, &events, true);
        let range = TimeRange::new(start, start + width);
        let k = kcore_window(&t, range);
        let adj = window_adj(&events, range);
        let n = MAX_V as usize;
        // Validity: within the subgraph of vertices with core >= c, every
        // vertex has degree >= c (taking c = each vertex's own core).
        for (v, &c) in k.core.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let deg_in_core = (0..n)
                .filter(|&u| adj[v][u] && k.core[u] >= c)
                .count();
            prop_assert!(
                deg_in_core as u32 >= c,
                "vertex {} core {} but only {} same-or-higher-core neighbors",
                v, c, deg_in_core
            );
        }
        // Maximality: no vertex could be in a deeper core — check the
        // (core+1)-core peel excludes it. (Weaker check: core <= degree.)
        let mut deg = vec![0u32; n];
        t.active_degrees(range, &mut deg);
        for (v, (&c, &d)) in k.core.iter().zip(deg.iter()).enumerate() {
            prop_assert!(c <= d, "core exceeds degree at {}", v);
        }
        prop_assert_eq!(k.degeneracy, k.core.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn triangles_match_bruteforce(events in arb_events(), start in 0i64..200, width in 1i64..150) {
        let t = TemporalCsr::from_events(MAX_V as usize, &events, true);
        let range = TimeRange::new(start, start + width);
        let adj = window_adj(&events, range);
        let n = MAX_V as usize;
        let mut expect = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    if adj[a][b] && adj[b][c] && adj[a][c] {
                        expect += 1;
                    }
                }
            }
        }
        prop_assert_eq!(triangles_window(&t, range), expect);
    }

    #[test]
    fn degree_stats_consistent(events in arb_events(), start in 0i64..200, width in 1i64..150) {
        let t = TemporalCsr::from_events(MAX_V as usize, &events, true);
        let range = TimeRange::new(start, start + width);
        let s = degree_stats(&t, range);
        prop_assert_eq!(s.histogram.iter().skip(1).sum::<usize>(), s.active_vertices);
        let weighted: usize = s
            .histogram
            .iter()
            .enumerate()
            .map(|(d, &c)| d * c)
            .sum();
        prop_assert_eq!(weighted, s.directed_edges);
        if s.active_vertices > 0 {
            let ccdf = s.ccdf();
            prop_assert!((ccdf[0] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn closeness_symmetry_within_components(events in arb_events(), start in 0i64..200, width in 1i64..150) {
        let t = TemporalCsr::from_events(MAX_V as usize, &events, true);
        let range = TimeRange::new(start, start + width);
        let c = closeness_window(&t, range, 0);
        // Harmonic closeness of an active vertex is positive iff it has a
        // neighbor other than itself.
        let adj = window_adj(&events, range);
        for (v, row) in adj.iter().enumerate() {
            if row.iter().any(|&b| b) {
                prop_assert!(c.harmonic[v] > 0.0, "vertex {}", v);
            }
        }
    }

    #[test]
    fn betweenness_nonnegative_and_zero_on_leaves(events in arb_events(), start in 0i64..200, width in 1i64..150) {
        let t = TemporalCsr::from_events(MAX_V as usize, &events, true);
        let range = TimeRange::new(start, start + width);
        let b = betweenness_window(&t, range);
        let adj = window_adj(&events, range);
        for (v, row) in adj.iter().enumerate() {
            prop_assert!(b.score[v] >= -1e-12, "vertex {}", v);
            if row.iter().filter(|&&x| x).count() <= 1 {
                prop_assert!(b.score[v].abs() < 1e-12, "leaf {} brokers nothing", v);
            }
        }
    }

    #[test]
    fn katz_bounds_hold(events in arb_events(), start in 0i64..200, width in 1i64..150) {
        let t = TemporalCsr::from_events(MAX_V as usize, &events, true);
        let range = TimeRange::new(start, start + width);
        let k = katz_window(&t, range, &KatzConfig::default());
        prop_assert!(k.converged);
        let mut deg = vec![0u32; MAX_V as usize];
        t.active_degrees(range, &mut deg);
        for v in 0..MAX_V as usize {
            if deg[v] > 0 {
                prop_assert!(k.score[v] >= 1.0 - 1e-9, "active vertex {}", v);
                // Geometric bound: score <= 1/(1 - alpha*max_deg).
                let max_deg = deg.iter().copied().max().unwrap() as f64;
                let bound = 1.0 / (1.0 - k.alpha * max_deg);
                prop_assert!(k.score[v] <= bound + 1e-6, "vertex {}: {} > {}", v, k.score[v], bound);
            } else {
                prop_assert_eq!(k.score[v], 0.0);
            }
        }
    }
}
