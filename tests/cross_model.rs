//! Cross-model integration tests: the offline, streaming, and postmortem
//! execution models must produce the same PageRank time series on the same
//! workload — the paper's premise that only *cost* differs between models.

use tempopr::prelude::*;

fn tight_pr() -> PrConfig {
    PrConfig {
        alpha: 0.15,
        tol: 1e-11,
        max_iters: 500,
        ..PrConfig::default()
    }
}

fn run_all_models(log: &EventLog, spec: WindowSpec) -> [RunOutput; 3] {
    let offline = run_offline(
        log,
        spec,
        &OfflineConfig {
            pr: tight_pr(),
            ..Default::default()
        },
    )
    .expect("offline run");
    let streaming = run_streaming(
        log,
        spec,
        &StreamingConfig {
            pr: tight_pr(),
            ..Default::default()
        },
    )
    .expect("streaming run");
    let engine = PostmortemEngine::new(
        log,
        spec,
        PostmortemConfig {
            pr: tight_pr(),
            ..Default::default()
        },
    )
    .expect("engine");
    [offline, streaming, engine.run()]
}

fn assert_models_agree(log: &EventLog, spec: WindowSpec, tol: f64) {
    let [offline, streaming, postmortem] = run_all_models(log, spec);
    for w in 0..spec.count {
        let o = offline.windows[w].ranks.as_ref().unwrap();
        let s = streaming.windows[w].ranks.as_ref().unwrap();
        let p = postmortem.windows[w].ranks.as_ref().unwrap();
        assert!(o.linf_distance(s) < tol, "offline vs streaming, window {w}");
        assert!(
            o.linf_distance(p) < tol,
            "offline vs postmortem, window {w}"
        );
        assert_eq!(
            offline.windows[w].stats.active_vertices, postmortem.windows[w].stats.active_vertices,
            "active set size, window {w}"
        );
    }
}

#[test]
fn models_agree_on_every_preset() {
    for d in Dataset::all() {
        let log = d.spec().generate(0.0006, 17);
        let span = log.last_time() - log.first_time();
        let spec = WindowSpec::covering(&log, span / 5, span / 12).expect("spec");
        assert_models_agree(&log, spec, 1e-7);
    }
}

#[test]
fn models_agree_on_overlapping_and_disjoint_windows() {
    let log = Dataset::WikiTalk.spec().generate(0.001, 23);
    let span = log.last_time() - log.first_time();
    // Heavy overlap (sw << delta).
    assert_models_agree(
        &log,
        WindowSpec::covering(&log, span / 4, span / 40).unwrap(),
        1e-7,
    );
    // Disjoint windows with gaps (sw > delta).
    assert_models_agree(
        &log,
        WindowSpec::covering(&log, span / 20, span / 10).unwrap(),
        1e-7,
    );
}

#[test]
fn models_agree_on_spiky_dataset() {
    let log = Dataset::Enron.spec().generate(0.002, 5);
    let span = log.last_time() - log.first_time();
    let spec = WindowSpec::covering(&log, span / 6, span / 15).unwrap();
    assert_models_agree(&log, spec, 1e-7);
}

#[test]
fn fingerprints_match_across_models_without_full_retention() {
    let log = Dataset::AskUbuntu.spec().generate(0.002, 9);
    let span = log.last_time() - log.first_time();
    let spec = WindowSpec::covering(&log, span / 5, span / 10).unwrap();
    let offline = run_offline(
        &log,
        spec,
        &OfflineConfig {
            pr: tight_pr(),
            retain: RetainMode::Summary,
            ..Default::default()
        },
    )
    .expect("offline run");
    let engine = PostmortemEngine::new(
        &log,
        spec,
        PostmortemConfig {
            pr: tight_pr(),
            retain: RetainMode::Summary,
            ..Default::default()
        },
    )
    .unwrap();
    let postmortem = engine.run();
    for (o, p) in offline.windows.iter().zip(postmortem.windows.iter()) {
        assert!(
            (o.fingerprint - p.fingerprint).abs() < 1e-7,
            "window {}: {} vs {}",
            o.window,
            o.fingerprint,
            p.fingerprint
        );
    }
}

#[test]
fn advisor_config_is_exact_too() {
    let log = Dataset::Youtube.spec().generate(0.0005, 31);
    let span = log.last_time() - log.first_time();
    let spec = WindowSpec::covering(&log, span / 4, span / 16).unwrap();
    let offline = run_offline(
        &log,
        spec,
        &OfflineConfig {
            pr: tight_pr(),
            ..Default::default()
        },
    )
    .expect("offline run");
    let mut cfg = suggest(&log, &spec, 0);
    cfg.pr = tight_pr();
    let out = PostmortemEngine::new(&log, spec, cfg).unwrap().run();
    for (o, p) in offline.windows.iter().zip(out.windows.iter()) {
        let d = o
            .ranks
            .as_ref()
            .unwrap()
            .linf_distance(p.ranks.as_ref().unwrap());
        assert!(d < 1e-7, "window {}: {d}", o.window);
    }
}

#[test]
fn streaming_local_push_tracks_exact_models() {
    let log = Dataset::WikiTalk.spec().generate(0.0008, 13);
    let span = log.last_time() - log.first_time();
    let spec = WindowSpec::covering(&log, span / 4, span / 30).unwrap();
    let exact = run_offline(
        &log,
        spec,
        &OfflineConfig {
            pr: tight_pr(),
            ..Default::default()
        },
    )
    .expect("offline run");
    let push = run_streaming(
        &log,
        spec,
        &StreamingConfig {
            pr: tight_pr(),
            incremental: IncrementalMode::LocalPush,
            ..Default::default()
        },
    )
    .expect("streaming run");
    for (e, p) in exact.windows.iter().zip(push.windows.iter()) {
        let d = e
            .ranks
            .as_ref()
            .unwrap()
            .linf_distance(p.ranks.as_ref().unwrap());
        assert!(d < 1e-3, "window {}: local push drifted by {d}", e.window);
    }
}
