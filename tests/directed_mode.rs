//! Directed-mode integration tests: with `symmetric = false` events keep
//! their direction, pull kernels use the stored transpose, and dangling
//! vertices redistribute their mass — across all execution models and
//! kernels.

use tempopr::kernel::reference_pagerank;
use tempopr::prelude::*;

fn tight_pr() -> PrConfig {
    PrConfig {
        alpha: 0.15,
        tol: 1e-11,
        max_iters: 500,
        ..PrConfig::default()
    }
}

fn directed_log() -> EventLog {
    let mut events = Vec::new();
    for i in 0..400u32 {
        let u = (i * 13 + 2) % 28;
        let v = (i * 7 + 5) % 28;
        if u != v {
            events.push(Event::new(u, v, i as i64));
        }
    }
    EventLog::from_unsorted(events, 28).unwrap()
}

fn reference_directed(log: &EventLog, spec: WindowSpec) -> Vec<SparseRanks> {
    (0..spec.count)
        .map(|w| {
            let r = spec.window(w);
            let edges: Vec<(u32, u32)> = log
                .events()
                .iter()
                .filter(|e| r.contains(e.t))
                .map(|e| (e.u, e.v))
                .collect();
            SparseRanks::from_dense(&reference_pagerank(log.num_vertices(), &edges, &tight_pr()))
        })
        .collect()
}

#[test]
fn directed_engine_matches_reference_all_kernels() {
    let log = directed_log();
    let spec = WindowSpec::covering(&log, 120, 40).unwrap();
    let expect = reference_directed(&log, spec);
    for kernel in [
        KernelKind::SpMV,
        KernelKind::SpMM { lanes: 4 },
        KernelKind::PushBlocking,
    ] {
        let cfg = PostmortemConfig {
            symmetric: false,
            kernel,
            pr: tight_pr(),
            ..Default::default()
        };
        let out = PostmortemEngine::new(&log, spec, cfg).unwrap().run();
        for (w, wo) in out.windows.iter().enumerate() {
            let d = wo.ranks.as_ref().unwrap().linf_distance(&expect[w]);
            assert!(d < 1e-7, "{kernel:?} window {w}: linf {d}");
        }
    }
}

#[test]
fn directed_offline_matches_reference() {
    let log = directed_log();
    let spec = WindowSpec::covering(&log, 120, 40).unwrap();
    let expect = reference_directed(&log, spec);
    let out = run_offline(
        &log,
        spec,
        &OfflineConfig {
            symmetric: false,
            pr: tight_pr(),
            ..Default::default()
        },
    )
    .expect("offline run");
    for (w, wo) in out.windows.iter().enumerate() {
        let d = wo.ranks.as_ref().unwrap().linf_distance(&expect[w]);
        assert!(d < 1e-7, "window {w}: linf {d}");
    }
}

#[test]
fn directed_ranks_differ_from_symmetric() {
    // Sanity: direction must matter. A pure sink vertex outranks its
    // symmetric self.
    let log = directed_log();
    let spec = WindowSpec::covering(&log, 200, 100).unwrap();
    let run = |symmetric| {
        PostmortemEngine::new(
            &log,
            spec,
            PostmortemConfig {
                symmetric,
                pr: tight_pr(),
                ..Default::default()
            },
        )
        .unwrap()
        .run()
    };
    let dir = run(false);
    let sym = run(true);
    let d = dir.windows[0]
        .ranks
        .as_ref()
        .unwrap()
        .linf_distance(sym.windows[0].ranks.as_ref().unwrap());
    assert!(
        d > 1e-4,
        "directed and symmetric ranks should differ, got {d}"
    );
}

#[test]
fn directed_partial_init_still_exact() {
    let log = directed_log();
    let spec = WindowSpec::covering(&log, 150, 30).unwrap();
    let run = |init_mode| {
        PostmortemEngine::new(
            &log,
            spec,
            PostmortemConfig {
                symmetric: false,
                init_mode,
                pr: tight_pr(),
                ..Default::default()
            },
        )
        .unwrap()
        .run()
    };
    let a = run(InitMode::Partial);
    let b = run(InitMode::Full);
    for (x, y) in a.windows.iter().zip(b.windows.iter()) {
        assert!(
            (x.fingerprint - y.fingerprint).abs() < 1e-8,
            "window {}",
            x.window
        );
    }
}
