//! Degenerate windows through every kernel: empty active sets, a single
//! self-loop vertex, windows that are *all* dangling vertices, and graphs
//! whose fixed point is the uniform start (convergence at iteration 1).
//! None of these may panic, return NaN, or leak rank mass.

use tempopr::graph::TemporalCsr;
use tempopr::kernel::{
    pagerank_batch, pagerank_window_blocking, pagerank_window_vec, BlockingWorkspace, Init,
    PrConfig, SpmmWorkspace,
};
use tempopr::prelude::*;

fn cfg() -> PrConfig {
    PrConfig {
        alpha: 0.15,
        tol: 1e-11,
        max_iters: 300,
        ..PrConfig::default()
    }
}

/// Runs all three kernels on one window of `t` and returns their rank
/// vectors (asserted to agree with each other along the way).
fn all_kernels(t: &TemporalCsr, range: TimeRange) -> Vec<f64> {
    let (spmv, s1) = pagerank_window_vec(t, t, range, Init::Uniform, &cfg(), None).unwrap();
    let mut bws = BlockingWorkspace::default();
    let s2 = pagerank_window_blocking(t, t, range, Init::Uniform, &cfg(), &mut bws).unwrap();
    let mut mws = SpmmWorkspace::default();
    let s3 = pagerank_batch(t, t, &[range], &[Init::Uniform], &cfg(), None, &mut mws).unwrap();
    assert_eq!(s1.active_vertices, s2.active_vertices);
    assert_eq!(s1.active_vertices, s3[0].active_vertices);
    let mut lane = vec![0.0; spmv.len()];
    mws.copy_lane_into(0, 1, &mut lane);
    for v in 0..spmv.len() {
        assert!(
            (spmv[v] - bws.pr.x[v]).abs() < 1e-9,
            "blocking disagrees at vertex {v}"
        );
        assert!(
            (spmv[v] - lane[v]).abs() < 1e-9,
            "spmm disagrees at vertex {v}"
        );
    }
    spmv
}

fn assert_is_distribution(x: &[f64], expect_active: bool) {
    let sum: f64 = x.iter().sum();
    for (v, &r) in x.iter().enumerate() {
        assert!(r.is_finite(), "vertex {v} rank not finite: {r}");
        assert!(r >= 0.0, "vertex {v} rank negative: {r}");
    }
    if expect_active {
        assert!((sum - 1.0).abs() < 1e-8, "mass leaked: Σ = {sum}");
    } else {
        assert_eq!(sum, 0.0, "empty window has nonzero mass");
    }
}

#[test]
fn window_with_no_events_is_all_zero() {
    let events: Vec<Event> = (0..20)
        .map(|i| Event::new(i % 5, (i + 1) % 5, 100))
        .collect();
    let t = TemporalCsr::from_events(5, &events, true);
    let x = all_kernels(&t, TimeRange::new(0, 50));
    assert_is_distribution(&x, false);
}

#[test]
fn window_with_a_single_self_loop_vertex() {
    // Vertex 3 talks only to itself inside the window; everything else is
    // outside. The active set is {3} and it must hold all the mass.
    let mut events = vec![Event::new(3, 3, 10)];
    for i in 0..20 {
        events.push(Event::new(i % 7, (i + 2) % 7, 500 + i as i64));
    }
    let t = TemporalCsr::from_events(7, &events, true);
    let x = all_kernels(&t, TimeRange::new(0, 100));
    assert_is_distribution(&x, true);
    assert!((x[3] - 1.0).abs() < 1e-9, "lone vertex rank {}", x[3]);
}

#[test]
fn directed_window_that_is_all_dangling() {
    // Directed star 0→{1,2,3} with no outgoing edges from the leaves and
    // none back to 0 inside the window: after one hop all mass sits on
    // dangling vertices and must be redistributed, not lost.
    let events = vec![
        Event::new(0, 1, 10),
        Event::new(0, 2, 11),
        Event::new(0, 3, 12),
    ];
    let out = TemporalCsr::from_events(4, &events, false);
    let pull = out.transpose();
    let range = TimeRange::new(0, 100);
    let (x, stats) = pagerank_window_vec(&pull, &out, range, Init::Uniform, &cfg(), None).unwrap();
    assert!(stats.converged);
    assert_is_distribution(&x, true);
    // The three leaves are symmetric and each outranks the source.
    assert!((x[1] - x[2]).abs() < 1e-10);
    assert!((x[2] - x[3]).abs() < 1e-10);
    assert!(x[1] > x[0]);
}

#[test]
fn regular_graph_converges_at_iteration_one() {
    // A 6-cycle (symmetric, degree-regular): the uniform start is the
    // exact fixed point, so every kernel must converge immediately and
    // report healthy stats.
    let events: Vec<Event> = (0..6).map(|i| Event::new(i, (i + 1) % 6, 10)).collect();
    let t = TemporalCsr::from_events(6, &events, true);
    let range = TimeRange::new(0, 100);
    let (x, stats) = pagerank_window_vec(&t, &t, range, Init::Uniform, &cfg(), None).unwrap();
    assert!(stats.converged);
    assert_eq!(stats.iterations, 1);
    assert!(stats.health.is_clean());
    assert_is_distribution(&x, true);
    for &r in &x {
        assert!((r - 1.0 / 6.0).abs() < 1e-12);
    }
    let y = all_kernels(&t, range);
    assert_is_distribution(&y, true);
}

#[test]
fn zero_iteration_budget_returns_the_init() {
    // max_iters = 0 is a legal "just set up the window" request: no
    // iteration runs, nothing converges, nothing panics.
    let events: Vec<Event> = (0..12)
        .map(|i| Event::new(i % 4, (i + 1) % 4, 10))
        .collect();
    let t = TemporalCsr::from_events(4, &events, true);
    let zero = PrConfig {
        max_iters: 0,
        ..cfg()
    };
    let (x, stats) =
        pagerank_window_vec(&t, &t, TimeRange::new(0, 100), Init::Uniform, &zero, None).unwrap();
    assert!(!stats.converged);
    assert_eq!(stats.iterations, 0);
    assert_is_distribution(&x, true);
}

#[test]
fn engine_warm_start_with_empty_overlap_matches_full_init() {
    // Two vertex eras that never meet: windows 0-3 live on vertices 0..8,
    // windows 4-7 on 8..16, with the era switch landing exactly on the
    // part boundary (num_multiwindows = 2). The warm carry between the
    // parts finds no shared vertex and must fall back to full init —
    // same fingerprints as InitMode::Full, no NaN, no degraded windows.
    let mut events = Vec::new();
    for era in 0..2u32 {
        let base = 8 * era;
        for i in 0..200u32 {
            let u = base + i % 8;
            let v = base + (i + 1 + i % 3) % 8;
            if u != v {
                events.push(Event::new(u, v, (era as i64) * 400 + (i as i64) % 400));
            }
        }
    }
    let log = EventLog::from_unsorted(events, 16).unwrap();
    let spec = WindowSpec::new(0, 100, 100, 8).unwrap();
    let run = |init_mode| {
        PostmortemEngine::new(
            &log,
            spec,
            PostmortemConfig {
                init_mode,
                num_multiwindows: 2,
                ..Default::default()
            },
        )
        .unwrap()
        .run()
    };
    let full = run(InitMode::Full);
    let warm = run(InitMode::Warm);
    assert!(!warm.degraded);
    for (a, b) in full.windows.iter().zip(warm.windows.iter()) {
        assert!(b.status.is_valid());
        assert!(b.fingerprint.is_finite());
        for &r in &b.ranks.as_ref().unwrap().values {
            assert!(r.is_finite() && r >= 0.0, "window {}: rank {r}", b.window);
        }
        // Within an era consecutive windows do overlap, so only the
        // boundary window is forced back to the cold path; it must agree
        // with full init to the last bit there, and to tolerance elsewhere.
        if b.window == 4 {
            assert_eq!(a.fingerprint.to_bits(), b.fingerprint.to_bits());
            assert_eq!(a.stats.iterations, b.stats.iterations);
        } else {
            assert!((a.fingerprint - b.fingerprint).abs() < 1e-7);
        }
    }
}

#[test]
fn engine_handles_spec_with_every_window_empty() {
    // The engine-level analogue: a window spec that misses the data
    // entirely must produce a complete, non-degraded run of empty windows.
    let events: Vec<Event> = (0..30)
        .map(|i| Event::new(i % 6, (i + 1) % 6, 1000))
        .collect();
    let log = EventLog::from_unsorted(events, 6).unwrap();
    let spec = WindowSpec::new(0, 10, 20, 5).unwrap();
    let out = PostmortemEngine::new(&log, spec, PostmortemConfig::default())
        .unwrap()
        .run();
    assert!(!out.degraded);
    assert_eq!(out.windows.len(), 5);
    for w in &out.windows {
        assert_eq!(w.status, WindowStatus::Ok);
        assert_eq!(w.stats.active_vertices, 0);
        assert!(w.ranks.as_ref().unwrap().is_empty());
    }
}
