//! Execution-configuration matrix: every combination of parallelization
//! level, kernel, partitioner, init mode, and multi-window count must
//! produce the same rankings — the paper's execution knobs change cost,
//! never results.

use tempopr::prelude::*;

fn tight_pr() -> PrConfig {
    PrConfig {
        alpha: 0.15,
        tol: 1e-11,
        max_iters: 400,
        ..PrConfig::default()
    }
}

fn workload() -> (EventLog, WindowSpec) {
    let log = Dataset::HepTh.spec().generate(0.0015, 77);
    let span = log.last_time() - log.first_time();
    let spec = WindowSpec::covering(&log, span / 4, span / 20).unwrap();
    (log, spec)
}

fn fingerprints(log: &EventLog, spec: WindowSpec, cfg: PostmortemConfig) -> Vec<f64> {
    PostmortemEngine::new(log, spec, cfg)
        .unwrap()
        .run()
        .windows
        .iter()
        .map(|w| w.fingerprint)
        .collect()
}

#[test]
fn full_execution_matrix_agrees() {
    let (log, spec) = workload();
    let baseline = fingerprints(
        &log,
        spec,
        PostmortemConfig {
            mode: ParallelMode::Sequential,
            kernel: KernelKind::SpMV,
            pr: tight_pr(),
            ..Default::default()
        },
    );
    let mut configs_checked = 0;
    for mode in [
        ParallelMode::Sequential,
        ParallelMode::WindowLevel,
        ParallelMode::ApplicationLevel,
        ParallelMode::Nested,
    ] {
        for kernel in [
            KernelKind::SpMV,
            KernelKind::SpMM { lanes: 4 },
            KernelKind::SpMM { lanes: 16 },
            KernelKind::PushBlocking,
        ] {
            for partitioner in [Partitioner::Auto, Partitioner::Simple, Partitioner::Static] {
                for granularity in [1usize, 7, 64] {
                    for init_mode in [InitMode::Full, InitMode::Partial, InitMode::Warm] {
                        for mw in [1usize, 4, 16] {
                            let cfg = PostmortemConfig {
                                mode,
                                kernel,
                                scheduler: Scheduler::new(partitioner, granularity),
                                init_mode,
                                num_multiwindows: mw,
                                pr: tight_pr(),
                                ..Default::default()
                            };
                            let got = fingerprints(&log, spec, cfg);
                            for (w, (a, b)) in baseline.iter().zip(got.iter()).enumerate() {
                                assert!(
                                    (a - b).abs() < 1e-8,
                                    "window {w} differs under {mode:?}/{kernel:?}/{partitioner:?}/g{granularity}/{init_mode:?}/mw{mw}: {a} vs {b}"
                                );
                            }
                            configs_checked += 1;
                        }
                    }
                }
            }
        }
    }
    assert_eq!(configs_checked, 4 * 4 * 3 * 3 * 3 * 3);
}

#[test]
fn partition_strategies_agree() {
    let (log, spec) = workload();
    let a = fingerprints(
        &log,
        spec,
        PostmortemConfig {
            partition: tempopr::graph::PartitionStrategy::EqualWindows,
            pr: tight_pr(),
            ..Default::default()
        },
    );
    let b = fingerprints(
        &log,
        spec,
        PostmortemConfig {
            partition: tempopr::graph::PartitionStrategy::EqualEvents,
            pr: tight_pr(),
            ..Default::default()
        },
    );
    for (w, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!((x - y).abs() < 1e-8, "window {w}");
    }
}

#[test]
fn iteration_counts_drop_with_partial_init_under_all_kernels() {
    // A strongly hub-dominated workload with heavy window overlap, where
    // warm starts must pay off for both SpMV and SpMM.
    let mut events = Vec::new();
    for i in 0..4000u32 {
        let (u, v) = if i % 2 == 0 {
            (0, 1 + i % 40)
        } else {
            (1 + (i * 7) % 40, 1 + (i * 13) % 40)
        };
        if u != v {
            events.push(Event::new(u, v, i as i64));
        }
    }
    let log = EventLog::from_unsorted(events, 41).unwrap();
    let spec = WindowSpec::covering(&log, 1600, 50).unwrap();
    for kernel in [
        KernelKind::SpMV,
        KernelKind::SpMM { lanes: 8 },
        KernelKind::PushBlocking,
    ] {
        let run = |init_mode| {
            PostmortemEngine::new(
                &log,
                spec,
                PostmortemConfig {
                    kernel,
                    mode: ParallelMode::Sequential,
                    init_mode,
                    num_multiwindows: 2,
                    ..Default::default()
                },
            )
            .unwrap()
            .run()
            .total_iterations()
        };
        let full = run(InitMode::Full);
        let partial = run(InitMode::Partial);
        let warm = run(InitMode::Warm);
        assert!(
            partial < full,
            "{kernel:?}: partial {partial} >= full {full}"
        );
        assert!(
            warm <= partial,
            "{kernel:?}: warm {warm} > partial {partial}"
        );
    }
}
