//! Property-based tests of the PageRank kernels: for arbitrary temporal
//! graphs and windows, every kernel agrees with the reference solver, rank
//! vectors are distributions over the active set, and the SpMM batch
//! equals per-window SpMV.

use proptest::prelude::*;
use tempopr::graph::{Event, TemporalCsr, TimeRange};
use tempopr::kernel::{
    pagerank_batch, pagerank_window_blocking, pagerank_window_vec, reference_pagerank,
    BlockingWorkspace, Init, PrConfig, Scheduler, SpmmWorkspace,
};

const MAX_V: u32 = 20;

fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(
        (0..MAX_V, 0..MAX_V, 0i64..300).prop_map(|(u, v, t)| Event::new(u, v, t)),
        1..150,
    )
}

fn tight() -> PrConfig {
    PrConfig {
        alpha: 0.15,
        tol: 1e-12,
        max_iters: 400,
        ..PrConfig::default()
    }
}

fn window_edges(events: &[Event], range: TimeRange) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for e in events {
        if range.contains(e.t) {
            out.push((e.u, e.v));
            if e.u != e.v {
                out.push((e.v, e.u));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spmv_matches_reference(events in arb_events(), start in 0i64..300, width in 1i64..200) {
        let t = TemporalCsr::from_events(MAX_V as usize, &events, true);
        let range = TimeRange::new(start, start + width);
        let (x, stats) = pagerank_window_vec(&t, &t, range, Init::Uniform, &tight(), None).unwrap();
        let r = reference_pagerank(MAX_V as usize, &window_edges(&events, range), &tight());
        for v in 0..MAX_V as usize {
            prop_assert!((x[v] - r[v]).abs() < 1e-8, "vertex {}: {} vs {}", v, x[v], r[v]);
        }
        if stats.active_vertices > 0 {
            let sum: f64 = x.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn parallel_spmv_matches_sequential(events in arb_events(), g in 1usize..32) {
        let t = TemporalCsr::from_events(MAX_V as usize, &events, true);
        let range = TimeRange::new(0, 300);
        let (seq, _) = pagerank_window_vec(&t, &t, range, Init::Uniform, &tight(), None).unwrap();
        let sched = Scheduler::new(tempopr::kernel::Partitioner::Simple, g);
        let (par, _) = pagerank_window_vec(&t, &t, range, Init::Uniform, &tight(), Some(&sched)).unwrap();
        for v in 0..MAX_V as usize {
            prop_assert!((seq[v] - par[v]).abs() < 1e-9);
        }
    }

    #[test]
    fn spmm_batch_equals_spmv_lanes(
        events in arb_events(),
        starts in prop::collection::vec(0i64..250, 1..9),
        width in 5i64..150,
    ) {
        let t = TemporalCsr::from_events(MAX_V as usize, &events, true);
        let ranges: Vec<TimeRange> = starts.iter().map(|&s| TimeRange::new(s, s + width)).collect();
        let inits = vec![Init::Uniform; ranges.len()];
        let mut ws = SpmmWorkspace::default();
        let stats = pagerank_batch(&t, &t, &ranges, &inits, &tight(), None, &mut ws).unwrap();
        for (k, &range) in ranges.iter().enumerate() {
            let (expect, es) = pagerank_window_vec(&t, &t, range, Init::Uniform, &tight(), None).unwrap();
            let mut got = vec![0.0; MAX_V as usize];
            ws.copy_lane_into(k, ranges.len(), &mut got);
            for v in 0..MAX_V as usize {
                prop_assert!((got[v] - expect[v]).abs() < 1e-8, "lane {} vertex {}", k, v);
            }
            prop_assert_eq!(stats[k].active_vertices, es.active_vertices);
        }
    }

    #[test]
    fn partial_init_converges_to_same_fixed_point(
        events in arb_events(),
        s0 in 0i64..150,
        shift in 1i64..80,
        width in 20i64..200,
    ) {
        let t = TemporalCsr::from_events(MAX_V as usize, &events, true);
        let r0 = TimeRange::new(s0, s0 + width);
        let r1 = TimeRange::new(s0 + shift, s0 + shift + width);
        let (prev, _) = pagerank_window_vec(&t, &t, r0, Init::Uniform, &tight(), None).unwrap();
        let (uniform, _) = pagerank_window_vec(&t, &t, r1, Init::Uniform, &tight(), None).unwrap();
        let (partial, _) = pagerank_window_vec(&t, &t, r1, Init::Partial(&prev), &tight(), None).unwrap();
        for v in 0..MAX_V as usize {
            prop_assert!((uniform[v] - partial[v]).abs() < 1e-7, "vertex {}", v);
        }
    }

    #[test]
    fn ranks_are_nonnegative_and_zero_off_active_set(
        events in arb_events(),
        start in 0i64..300,
        width in 1i64..100,
    ) {
        let t = TemporalCsr::from_events(MAX_V as usize, &events, true);
        let range = TimeRange::new(start, start + width);
        let (x, _) = pagerank_window_vec(&t, &t, range, Init::Uniform, &tight(), None).unwrap();
        let mut deg = vec![0u32; MAX_V as usize];
        t.active_degrees(range, &mut deg);
        for v in 0..MAX_V as usize {
            prop_assert!(x[v] >= 0.0);
            if deg[v] == 0 {
                prop_assert_eq!(x[v], 0.0, "inactive vertex {} has rank", v);
            } else {
                prop_assert!(x[v] > 0.0, "active vertex {} has zero rank", v);
            }
        }
    }

    #[test]
    fn directed_kernel_matches_reference(events in arb_events(), start in 0i64..300, width in 1i64..200) {
        let out = TemporalCsr::from_events(MAX_V as usize, &events, false);
        let pull = out.transpose();
        let range = TimeRange::new(start, start + width);
        let (x, _) = pagerank_window_vec(&pull, &out, range, Init::Uniform, &tight(), None).unwrap();
        let edges: Vec<(u32, u32)> = events
            .iter()
            .filter(|e| range.contains(e.t))
            .map(|e| (e.u, e.v))
            .collect();
        let r = reference_pagerank(MAX_V as usize, &edges, &tight());
        for v in 0..MAX_V as usize {
            prop_assert!((x[v] - r[v]).abs() < 1e-8, "vertex {}", v);
        }
    }

    #[test]
    fn propagation_blocking_matches_pull(events in arb_events(), start in 0i64..300, width in 1i64..200) {
        let t = TemporalCsr::from_events(MAX_V as usize, &events, true);
        let range = TimeRange::new(start, start + width);
        let (pull, _) = pagerank_window_vec(&t, &t, range, Init::Uniform, &tight(), None).unwrap();
        let mut ws = BlockingWorkspace::default();
        pagerank_window_blocking(&t, &t, range, Init::Uniform, &tight(), &mut ws).unwrap();
        for (v, (a, b)) in pull.iter().zip(ws.pr.x.iter()).enumerate() {
            prop_assert!((a - b).abs() < 1e-9, "vertex {}", v);
        }
    }
}
