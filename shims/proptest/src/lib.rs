//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of proptest's API its test suites use: the [`strategy::Strategy`]
//! trait (integer ranges, tuples, `prop_map`, `collection::vec`,
//! `sample::select`, `any::<bool>()`, [`strategy::Just`]), the [`proptest!`] macro
//! with `#![proptest_config(...)]` support, and `prop_assert*` macros.
//!
//! Differences from upstream that the workspace does not rely on:
//! no shrinking (a failing case panics with the assertion message
//! directly), and case generation is seeded deterministically from the
//! test's module path and name, so failures reproduce on re-run.

#![forbid(unsafe_code)]

/// Deterministic RNG handed to strategies during generation.
pub mod test_runner {
    /// Runner configuration (subset: number of cases per test).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// xoshiro256++ generator used for strategy sampling.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Seeds the generator from a test identity string and case index,
        /// so each case is deterministic and independent.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = h ^ ((case as u64) << 32 | 0x5bf0_3635);
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let x = self.next_u64();
                if x < zone {
                    return x % bound;
                }
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The produced value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_strategy_int {
        ($($t:ty => $ut:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $ut).wrapping_sub(self.start as $ut) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical uniform strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// `prop::collection` strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::sample` strategies.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among fixed options.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Picks one of `options` uniformly at random.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Property-test assertion; panics on failure (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated cases. Supports an
/// optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    // Internal: one fn item at a time under a captured config.
    (@cfg ($cfg:expr) $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(test_name, case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )*
                $body
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)) => {};
    // Entry with an explicit config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Entry with the default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pairs() -> impl Strategy<Value = Vec<(u32, bool)>> {
        prop::collection::vec((0u32..50, any::<bool>()), 1..40)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3i64..9, y in 0usize..5, z in -4i32..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((-4..4).contains(&z));
        }

        #[test]
        fn map_and_vec_compose(v in arb_pairs(), pick in prop::sample::select(vec![1u8, 2, 3])) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            prop_assert!(v.iter().all(|&(a, _)| a < 50));
            prop_assert_ne!(pick, 0);
        }

        #[test]
        fn prop_map_applies(s in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(s % 2, 0);
            prop_assert!(s < 20);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = prop::collection::vec(0u64..1_000_000, 5..30);
        let a = strat.generate(&mut TestRng::for_case("t", 7));
        let b = strat.generate(&mut TestRng::for_case("t", 7));
        let c = strat.generate(&mut TestRng::for_case("t", 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
