//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of rand's 0.8 API it uses: the [`Rng`] and
//! [`SeedableRng`] traits and [`rngs::StdRng`]. The generator is
//! xoshiro256++ seeded through splitmix64 — deterministic for a given
//! seed, which is all the workspace's datagen and tests rely on (they
//! assert self-consistency and statistical properties, never bit-exact
//! parity with upstream rand).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Construction of a generator from seed material (subset of rand's trait).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random bits into [0, 1), matching rand's open-high convention.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high - low) as u64;
                // Debiased via rejection on the top multiple of `span`.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let x = rng.next_u64();
                    if x < zone {
                        return low + (x % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($t:ty, $ut:ty) => {
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $ut).wrapping_sub(low as $ut);
                let off = <$ut>::sample_range(rng, 0, span);
                low.wrapping_add(off as $t)
            }
        }
    };
}

impl_sample_uniform_int!(i32, u32);
impl_sample_uniform_int!(i64, u64);

/// Random-number generator interface (subset of rand's trait).
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of `T` (`f64`/`f32` in `[0,1)`, full range for ints).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_and_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let i = rng.gen_range(0usize..7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }
}
