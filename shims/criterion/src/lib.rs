//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of criterion's API its benches use: [`Criterion`] with
//! `sample_size` / `measurement_time` / `warm_up_time`, benchmark groups,
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Timing is real (monotonic wall clock with a warm-up phase and
//! per-sample medians printed to stdout) but there is no statistical
//! analysis, baselines, or HTML report.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_bench(self, &id, f);
    }

    /// Criterion's post-`main` hook; nothing to finalize in the shim.
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(self.criterion, &full, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_once(f: &mut impl FnMut(&mut Bencher), iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_bench(cfg: &Criterion, id: &str, mut f: impl FnMut(&mut Bencher)) {
    // Warm up and estimate a per-iteration cost to size the samples.
    let warm_start = Instant::now();
    let mut per_iter = Duration::ZERO;
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < cfg.warm_up_time || warm_iters == 0 {
        let d = run_once(&mut f, 1);
        per_iter = if warm_iters == 0 {
            d
        } else {
            (per_iter + d) / 2
        };
        warm_iters += 1;
    }

    let budget = cfg.measurement_time.max(Duration::from_millis(1));
    let per_sample = budget / cfg.sample_size as u32;
    let iters = if per_iter.is_zero() {
        1_000
    } else {
        (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000_000) as u64
    };

    let mut samples: Vec<Duration> = (0..cfg.sample_size)
        .map(|_| run_once(&mut f, iters) / iters as u32)
        .collect();
    samples.sort();
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!(
        "{id:<56} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_duration(lo),
        fmt_duration(median),
        fmt_duration(hi),
        samples.len(),
        iters
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Prevents the optimizer from discarding a value (re-export shape).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group runner, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_times() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("shim");
        let mut ran = false;
        g.bench_function("sum", |b| {
            ran = true;
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.finish();
        assert!(ran);
    }
}
