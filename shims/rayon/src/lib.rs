//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *subset* of rayon's API it actually uses, implemented on
//! `std::thread::scope`. Semantics match rayon where the workspace relies
//! on them:
//!
//! - [`prelude::IntoParallelIterator`] on `Vec<T>` and `Range<usize>`,
//!   with `with_max_len`, `for_each`, `map`, `reduce`, and `collect`
//!   (order-preserving);
//! - [`ThreadPool`] / [`ThreadPoolBuilder`] where `install` scopes the
//!   thread count seen by [`current_num_threads`] (and by parallel calls
//!   issued inside the closure) to the pool's size;
//! - panics in worker closures propagate to the caller.
//!
//! Scheduling is static (contiguous chunks, one per worker) rather than
//! work-stealing; `with_max_len` is accepted and ignored. Every consumer in
//! this workspace pre-chunks work through `tempopr_kernel::Scheduler`, so
//! the difference only affects load balancing, never results.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::fmt;
use std::num::NonZeroUsize;

thread_local! {
    /// Thread count installed by the innermost enclosing `ThreadPool::install`.
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Number of worker threads the current scope would use.
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(|p| p.get())
        .unwrap_or_else(default_threads)
}

/// Restores the ambient thread count when a scope ends (including on panic).
struct ThreadCountGuard {
    prev: Option<usize>,
}

impl ThreadCountGuard {
    fn set(threads: usize) -> Self {
        let prev = POOL_THREADS.with(|p| p.replace(Some(threads)));
        ThreadCountGuard { prev }
    }
}

impl Drop for ThreadCountGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        POOL_THREADS.with(|p| p.set(prev));
    }
}

/// A fixed-size logical thread pool. Work submitted through parallel
/// iterators inside [`ThreadPool::install`] runs on freshly scoped threads
/// capped at the pool's size.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count installed.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let _guard = ThreadCountGuard::set(self.threads);
        op()
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type returned by [`ThreadPoolBuilder::build`] (infallible here,
/// kept for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (all-cores) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (0 = default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// Runs `f` over `items` on up to `current_num_threads()` scoped threads,
/// returning the per-item results in input order. Worker panics resurface
/// on the calling thread.
fn run_parallel<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads().max(1);
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = threads.min(n);
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(chunk.min(items.len()));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                s.spawn(move || {
                    // Nested parallel calls in workers see the same budget.
                    let _guard = ThreadCountGuard::set(threads);
                    c.into_iter().map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Parallel-iterator types (see [`prelude`]).
pub mod iter {
    use super::run_parallel;
    use std::ops::Range;

    /// Conversion into a parallel iterator (subset of rayon's trait).
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;
        /// Converts `self` into a [`ParIter`].
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl IntoParallelIterator for Range<usize> {
        type Item = usize;
        fn into_par_iter(self) -> ParIter<usize> {
            ParIter {
                items: self.collect(),
            }
        }
    }

    /// A materialized parallel iterator over owned items.
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParIter<T> {
        /// Accepted for API compatibility; chunking here is always static.
        pub fn with_max_len(self, _max: usize) -> Self {
            self
        }

        /// Consumes every item in parallel.
        pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
            run_parallel(self.items, f);
        }

        /// Maps items through `f`, deferring execution to the terminal call.
        pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> MapParIter<T, F> {
            MapParIter {
                items: self.items,
                f,
            }
        }
    }

    /// A parallel iterator with a pending `map` stage.
    pub struct MapParIter<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T: Send, R: Send, F: Fn(T) -> R + Sync> MapParIter<T, F> {
        /// Accepted for API compatibility; chunking here is always static.
        pub fn with_max_len(self, _max: usize) -> Self {
            self
        }

        /// Maps in parallel and folds the results with `op` from `identity`.
        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
        where
            ID: Fn() -> R + Sync,
            OP: Fn(R, R) -> R + Sync,
        {
            let f = self.f;
            run_parallel(self.items, f).into_iter().fold(identity(), op)
        }

        /// Maps in parallel and collects results in input order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let f = self.f;
            run_parallel(self.items, f).into_iter().collect()
        }
    }
}

/// The usual glob-import surface: `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, MapParIter, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_everything() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let idx: Vec<usize> = (0..100).collect();
        idx.into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..50usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..50).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_reduce_sums() {
        let s = (0..101usize)
            .into_par_iter()
            .map(|i| i)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 5050);
    }

    #[test]
    fn pool_install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            (0..64usize).into_par_iter().for_each(|i| {
                assert!(i < 10, "boom {i}");
            });
        });
        assert!(r.is_err());
    }
}
