//! Quickstart: postmortem PageRank on a small synthetic temporal graph.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tempopr::prelude::*;

fn main() {
    // 1. A temporal graph is a set of (u, v, t) relational events. Here:
    //    a synthetic stand-in for the wiki-talk dataset at a tiny scale.
    let log = Dataset::WikiTalk.spec().generate(0.001, 42);
    println!(
        "events: {}, vertices: {}, time span: {} days",
        log.len(),
        log.num_vertices(),
        (log.last_time() - log.first_time()) / DAY
    );

    // 2. Choose the sliding-window analysis: 90-day windows sliding by 30
    //    days. Every window is one graph in the sequence G0, G1, ...
    let spec = WindowSpec::covering(&log, 90 * DAY, 30 * DAY).expect("valid window parameters");
    println!("windows: {} (width 90d, offset 30d)", spec.count);

    // 3. Run the postmortem engine with default settings (SpMM kernel,
    //    nested parallelism, partial initialization, 6 multi-window
    //    graphs).
    let engine = PostmortemEngine::new(&log, spec, PostmortemConfig::default())
        .expect("engine construction");
    let out = engine.run();

    // 4. Inspect the time series of rankings.
    println!("\nwindow  active_vertices  iterations  top_vertex  top_rank");
    for w in &out.windows {
        let ranks = w.ranks.as_ref().expect("full retention by default");
        if let Some((v, r)) = ranks.top() {
            println!(
                "{:>6}  {:>15}  {:>10}  {:>10}  {:>8.5}",
                w.window, w.stats.active_vertices, w.stats.iterations, v, r
            );
        } else {
            println!("{:>6}  (empty window)", w.window);
        }
    }

    // 5. Ask for the paper's suggested configuration for this workload
    //    (§6.3.6) — useful when you don't want to tune.
    let suggested = suggest(&log, &spec, 0);
    println!(
        "\nsuggested config: mode={:?}, kernel={:?}, multiwindows={}",
        suggested.mode, suggested.kernel, suggested.num_multiwindows
    );
}
