//! Academic collaboration analysis (paper §3.1).
//!
//! Events are co-authorships: if authors `a1` and `a2` co-wrote a paper on
//! day `d`, the tuple `(a1, a2, d)` joins the event set. The window width
//! `δ` sets the *social time scale* of the question — a 10-year window
//! asks "who matters in this scientific era", a 1-year window asks "who is
//! central in the current collaboration dynamic" — while the sliding
//! offset `sw` is a resolution parameter. This example runs both scales on
//! the same event set and shows they answer different questions.
//!
//! ```sh
//! cargo run --release --example collaboration_network
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tempopr::prelude::*;

const YEAR: i64 = 365 * DAY;

/// Synthesizes 30 years of co-authorship events with a generational shift:
/// authors 0-9 dominate the first half, authors 10-19 the second, with a
/// stable "bridge" author 20 collaborating throughout.
fn collaboration_events() -> EventLog {
    let mut rng = StdRng::seed_from_u64(7);
    let mut events = Vec::new();
    let span = 30 * YEAR;
    for _ in 0..20_000 {
        let t = rng.gen_range(0..span);
        let frac = t as f64 / span as f64;
        let (u, v) = if rng.gen_bool(0.15) {
            // The bridge author collaborates across generations.
            (20u32, rng.gen_range(0..20u32))
        } else if frac < 0.5 {
            (rng.gen_range(0..10u32), rng.gen_range(0..10u32))
        } else {
            (rng.gen_range(10..20u32), rng.gen_range(10..20u32))
        };
        if u != v {
            events.push(Event::new(u, v, t));
        }
    }
    EventLog::from_unsorted(events, 21).expect("valid log")
}

fn top_k(ranks: &SparseRanks, k: usize) -> Vec<(u32, f64)> {
    let mut pairs: Vec<(u32, f64)> = ranks
        .vertices
        .iter()
        .copied()
        .zip(ranks.values.iter().copied())
        .collect();
    pairs.sort_by(|a, b| b.1.total_cmp(&a.1));
    pairs.truncate(k);
    pairs
}

fn run_scale(log: &EventLog, delta: i64, sw: i64, label: &str) {
    let spec = WindowSpec::covering(log, delta, sw).expect("valid spec");
    let engine = PostmortemEngine::new(log, spec, PostmortemConfig::default()).expect("engine");
    let out = engine.run();
    println!("\n== {label}: {} windows ==", spec.count);
    println!("{:<8} {:<14} top-3 authors (rank)", "window", "start_year");
    for w in out.windows.iter() {
        let range = spec.window(w.window);
        let year = range.start / YEAR;
        let ranks = w.ranks.as_ref().unwrap();
        let tops: Vec<String> = top_k(ranks, 3)
            .into_iter()
            .map(|(v, r)| format!("a{v}({r:.3})"))
            .collect();
        println!(
            "{:<8} {:<14} {}",
            w.window,
            format!("year {year}"),
            tops.join("  ")
        );
    }
}

fn main() {
    let log = collaboration_events();
    println!(
        "co-authorship events: {} over {} years, {} authors",
        log.len(),
        (log.last_time() - log.first_time()) / YEAR,
        log.num_vertices()
    );

    // Era scale: δ = 10 years, slid by 5 — "who defines a scientific era?"
    run_scale(&log, 10 * YEAR, 5 * YEAR, "era scale (δ = 10y, sw = 5y)");

    // Dynamics scale: δ = 1 year, slid by 1 — "who is central right now?"
    // Expect the generational shift to appear around year 15, with the
    // bridge author persistently well-ranked.
    run_scale(&log, YEAR, YEAR, "dynamics scale (δ = 1y, sw = 1y)");

    println!(
        "\nNote how the era scale smooths the generational handover the \
         dynamics scale resolves sharply — the δ/sw choice is an analysis \
         question, not a tuning knob (paper §3.1)."
    );
}
