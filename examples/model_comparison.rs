//! The three execution models side by side (paper §3.3): offline,
//! streaming, and postmortem compute the *same* time series of PageRank
//! vectors; only the cost differs. This example verifies the agreement and
//! reports wall times on one workload.
//!
//! ```sh
//! cargo run --release --example model_comparison
//! ```

use std::time::Instant;
use tempopr::prelude::*;

fn main() {
    let log = Dataset::WikiTalk.spec().generate(0.002, 42);
    let spec = WindowSpec::covering(&log, 90 * DAY, 30 * DAY).expect("valid spec");
    println!(
        "wiki-talk stand-in: {} events, {} vertices, {} windows",
        log.len(),
        log.num_vertices(),
        spec.count
    );

    // Offline: rebuild a graph per window, PageRank from scratch.
    let t0 = Instant::now();
    let offline = run_offline(&log, spec, &OfflineConfig::default()).expect("offline run");
    let t_offline = t0.elapsed();

    // Streaming: one mutable graph, insert/delete batches, incremental
    // PageRank (STINGER-like).
    let t0 = Instant::now();
    let streaming = run_streaming(&log, spec, &StreamingConfig::default()).expect("streaming run");
    let t_streaming = t0.elapsed();

    // Postmortem: temporal CSR + multi-window graphs + partial init.
    let t0 = Instant::now();
    let engine = PostmortemEngine::new(&log, spec, PostmortemConfig::default()).expect("engine");
    let postmortem = engine.run();
    let t_postmortem = t0.elapsed();

    // All three must agree window by window.
    let mut max_d = 0.0f64;
    for w in 0..spec.count {
        let o = offline.windows[w].ranks.as_ref().unwrap();
        let s = streaming.windows[w].ranks.as_ref().unwrap();
        let p = postmortem.windows[w].ranks.as_ref().unwrap();
        max_d = max_d.max(o.linf_distance(s)).max(o.linf_distance(p));
    }
    println!("max rank disagreement across models/windows: {max_d:.2e}");
    assert!(max_d < 1e-5, "models disagree");

    println!("\nmodel       wall_time   vs_postmortem");
    for (name, t) in [
        ("offline", t_offline),
        ("streaming", t_streaming),
        ("postmortem", t_postmortem),
    ] {
        println!(
            "{:<11} {:>8.3}s   {:>6.2}x",
            name,
            t.as_secs_f64(),
            t.as_secs_f64() / t_postmortem.as_secs_f64()
        );
    }
    println!(
        "\n(streaming pays graph maintenance + pointer-chasing per window; \
         offline pays a rebuild per window; postmortem builds once and \
         shares work across windows — paper §3.3)"
    );
}
