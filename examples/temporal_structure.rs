//! Structural evolution of a temporal graph: the non-PageRank kernels the
//! paper names in §3.1 (connected components, k-core) plus exact degree
//! and triangle statistics, computed postmortem for every window.
//!
//! ```sh
//! cargo run --release --example temporal_structure
//! ```

use tempopr::prelude::*;

fn main() {
    // The stackoverflow stand-in: smooth growth, so structure densifies
    // over time (Leskovec's densification laws are visible in the
    // mean-degree and degeneracy columns).
    let log = Dataset::StackOverflow.spec().generate(0.0005, 42);
    let spec = WindowSpec::covering(&log, 180 * DAY, 90 * DAY).expect("valid spec");
    println!(
        "{} events, {} vertices, {} windows (delta=180d, sw=90d)\n",
        log.len(),
        log.num_vertices(),
        spec.count
    );

    let summaries = temporal_structure(&log, spec, &StructureConfig::default()).expect("analysis");

    println!(
        "{:>6} {:>9} {:>8} {:>7} {:>9} {:>11} {:>8} {:>6} {:>10}",
        "window",
        "vertices",
        "edges",
        "maxdeg",
        "meandeg",
        "components",
        "largest",
        "core",
        "triangles"
    );
    for s in &summaries {
        println!(
            "{:>6} {:>9} {:>8} {:>7} {:>9.2} {:>11} {:>8} {:>6} {:>10}",
            s.window,
            s.active_vertices,
            s.edges,
            s.max_degree,
            s.mean_degree,
            s.components.unwrap(),
            s.largest_component.unwrap(),
            s.degeneracy.unwrap(),
            s.triangles.unwrap(),
        );
    }

    // Densification: compare the first and last non-empty windows.
    let first = summaries.iter().find(|s| s.active_vertices > 0).unwrap();
    let last = summaries
        .iter()
        .rev()
        .find(|s| s.active_vertices > 0)
        .unwrap();
    println!(
        "\ngrowth: vertices {} -> {}, mean degree {:.2} -> {:.2}, degeneracy {} -> {}",
        first.active_vertices,
        last.active_vertices,
        first.mean_degree,
        last.mean_degree,
        first.degeneracy.unwrap(),
        last.degeneracy.unwrap()
    );
}
