//! Rank evolution — the paper's motivating question ("understanding the
//! nature of changes in the graph over time", §1) answered with the
//! downstream tooling: per-window PageRank → top-k churn, Spearman
//! correlation, rank trajectories, and a personalized view relative to a
//! seed actor.
//!
//! ```sh
//! cargo run --release --example rank_evolution
//! ```

use tempopr::analytics::evolution::{churn_series, top_k, trajectory};
use tempopr::graph::TemporalCsr;
use tempopr::kernel::{pagerank_window_personalized, PrWorkspace};
use tempopr::prelude::*;

fn main() {
    // A growth-shaped temporal graph: rankings drift as the graph expands.
    let log = Dataset::AskUbuntu.spec().generate(0.004, 21);
    let spec = WindowSpec::covering(&log, 365 * DAY, 120 * DAY).expect("valid spec");
    println!(
        "{} events, {} vertices, {} windows (delta=365d, sw=120d)\n",
        log.len(),
        log.num_vertices(),
        spec.count
    );

    let engine = PostmortemEngine::new(&log, spec, PostmortemConfig::default()).expect("engine");
    let out = engine.run();

    // Collect sparse rankings in window order.
    let rankings: Vec<(Vec<u32>, Vec<f64>)> = out
        .windows
        .iter()
        .map(|w| {
            let r = w.ranks.as_ref().unwrap();
            (r.vertices.clone(), r.values.clone())
        })
        .collect();

    // 1. Churn of the top-10 across consecutive windows.
    println!(
        "{:<8} {:>14} {:>10}  movement in the top-10",
        "window", "top10_jaccard", "spearman"
    );
    for step in churn_series(&rankings, 10) {
        let sp = step
            .spearman
            .map_or("n/a".to_string(), |s| format!("{s:.3}"));
        let movement = if step.entered.is_empty() {
            "stable".to_string()
        } else {
            format!("in: {:?}  out: {:?}", step.entered, step.left)
        };
        println!(
            "{:<8} {:>14.2} {:>10}  {}",
            step.window, step.topk_jaccard, sp, movement
        );
    }

    // 2. Trajectory of the overall winner.
    let (winner, _) = rankings
        .iter()
        .flat_map(|(vs, xs)| top_k(vs, xs, 1))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty");
    let traj = trajectory(&rankings, winner);
    println!("\nrank trajectory of vertex {winner}:");
    for (w, x) in traj.iter().enumerate() {
        let bar = "#".repeat((x * 400.0) as usize);
        println!("  window {w:>3}  {x:.4}  {bar}");
    }

    // 3. Personalized view: importance relative to the winner as seed.
    let tcsr = TemporalCsr::from_log(&log, true);
    let last = spec.window(spec.count - 1);
    let mut pref = vec![0.0; log.num_vertices()];
    pref[winner as usize] = 1.0;
    let mut ws = PrWorkspace::default();
    pagerank_window_personalized(
        &tcsr,
        &tcsr,
        last,
        &pref,
        &PrConfig::default(),
        None,
        &mut ws,
    )
    .expect("personalized pagerank");
    let mut pairs: Vec<(usize, f64)> =
        ws.x.iter()
            .copied()
            .enumerate()
            .filter(|&(v, x)| x > 0.0 && v != winner as usize)
            .collect();
    pairs.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nmost related to vertex {winner} in the final window (personalized PageRank):");
    for (v, x) in pairs.into_iter().take(5) {
        println!("  vertex {v:>6}  {x:.4}");
    }
}
