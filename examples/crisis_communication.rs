//! Organizational-crisis analysis on an Enron-like email graph (paper
//! §3.2, after Hossain, Murshed et al.).
//!
//! "Some actors of an organization that are prominent or more active will
//! become central during the organizational crisis." This example runs a
//! postmortem PageRank time series over the synthetic `ia-enron-email`
//! stand-in (which has the 2001-scandal arrival spike), locates the crisis
//! window from edge volume, and shows how the centrality of the top actors
//! concentrates during the crisis.
//!
//! ```sh
//! cargo run --release --example crisis_communication
//! ```

use tempopr::prelude::*;

fn main() {
    let spec_gen = Dataset::Enron.spec();
    let log = spec_gen.generate(0.02, 11);
    println!(
        "emails: {}, actors: {}, span: {} days",
        log.len(),
        log.num_vertices(),
        (log.last_time() - log.first_time()) / DAY
    );

    // Quarterly snapshots of a one-year communication window.
    let spec = WindowSpec::covering(&log, 365 * DAY, 91 * DAY).expect("valid spec");
    let engine = PostmortemEngine::new(&log, spec, PostmortemConfig::default()).expect("engine");
    let out = engine.run();

    // Crisis localization: the window with the most active communication.
    let busiest = out
        .windows
        .iter()
        .max_by_key(|w| w.stats.active_vertices)
        .expect("at least one window");
    println!(
        "\nbusiest window: #{} ({} active actors)",
        busiest.window, busiest.stats.active_vertices
    );

    // Concentration of influence: share of total rank held by the top-10
    // actors, per window. During the crisis the communication graph
    // centralizes around key actors.
    println!(
        "\n{:<8} {:<12} {:>14} {:>18}",
        "window", "start_day", "active_actors", "top10_rank_share"
    );
    for w in &out.windows {
        let ranks = w.ranks.as_ref().unwrap();
        let mut values: Vec<f64> = ranks.values.clone();
        values.sort_by(|a, b| b.total_cmp(a));
        let top10: f64 = values.iter().take(10).sum();
        let marker = if w.window == busiest.window {
            "  <-- crisis peak"
        } else {
            ""
        };
        println!(
            "{:<8} {:<12} {:>14} {:>17.1}%{}",
            w.window,
            spec.window(w.window).start / DAY,
            w.stats.active_vertices,
            100.0 * top10,
            marker
        );
    }

    // Track the single most central actor across time: role evolution.
    println!("\nmost central actor per window:");
    let mut last: Option<u32> = None;
    for w in &out.windows {
        if let Some((v, r)) = w.ranks.as_ref().unwrap().top() {
            if last != Some(v) {
                println!(
                    "  window {:>3}: actor {v} takes the lead (rank {r:.4})",
                    w.window
                );
                last = Some(v);
            }
        }
    }
}
