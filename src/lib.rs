//! # tempopr — Postmortem Computation of PageRank on Temporal Graphs
//!
//! A from-scratch Rust reproduction of Hossain & Saule, *Postmortem
//! Computation of Pagerank on Temporal Graphs* (ICPP '22): compute
//! PageRank on every window of a sliding-window temporal graph, given the
//! whole event history up front.
//!
//! This facade re-exports the workspace crates:
//!
//! - [`graph`]: event logs, sliding windows, temporal CSR, multi-window
//!   graphs;
//! - [`kernel`]: SpMV / SpMM PageRank kernels and TBB-style partitioners
//!   over rayon;
//! - [`core`]: the postmortem engine (partial initialization,
//!   window/application/nested parallelism) and the offline baseline;
//! - [`stream`]: the STINGER-like streaming baseline with incremental
//!   PageRank;
//! - [`datagen`]: synthetic stand-ins for the paper's seven datasets;
//! - [`analytics`]: the other postmortem kernels the paper names
//!   (connected components, k-core, degree distributions, triangles);
//! - [`telemetry`]: run-level observability — phase timers, counters,
//!   and deterministic convergence traces.
//!
//! ## Quick start
//!
//! ```
//! use tempopr::prelude::*;
//!
//! // A temporal graph: (u, v, t) relational events.
//! let events = (0..200u32)
//!     .map(|i| Event::new(i % 16, (i * 7 + 3) % 16, i as i64))
//!     .collect();
//! let log = EventLog::from_unsorted(events, 16).unwrap();
//!
//! // Slide a width-60 window by 20 time units per step.
//! let spec = WindowSpec::covering(&log, 60, 20).unwrap();
//!
//! // Postmortem PageRank on every window.
//! let engine = PostmortemEngine::new(&log, spec, PostmortemConfig::default()).unwrap();
//! let out = engine.run();
//! for w in &out.windows {
//!     let (v, r) = w.ranks.as_ref().unwrap().top().unwrap();
//!     println!("window {}: top vertex {v} (rank {r:.4})", w.window);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tempopr_analytics as analytics;
pub use tempopr_core as core;
pub use tempopr_datagen as datagen;
pub use tempopr_graph as graph;
pub use tempopr_kernel as kernel;
pub use tempopr_stream as stream;
pub use tempopr_telemetry as telemetry;

/// The most commonly used items in one import.
pub mod prelude {
    pub use tempopr_analytics::{temporal_structure, StructureConfig, StructureSummary};
    pub use tempopr_core::{
        corrupt_manifest, resume_scan, run_offline, run_offline_durable, run_offline_traced,
        suggest, CheckpointError, CheckpointOptions, CorruptionKind, EngineError, FaultPlan,
        InitMode, KernelKind, OfflineConfig, ParallelMode, PostmortemConfig, PostmortemEngine,
        RecoveryKind, RecoveryPolicy, RetainMode, RunOutput, SparseRanks, WindowFault,
        WindowOutput, WindowStatus,
    };
    pub use tempopr_datagen::{Dataset, DatasetSpec, DAY};
    pub use tempopr_graph::{Event, EventLog, IngestReport, ParseMode, TimeRange, WindowSpec};
    pub use tempopr_kernel::{
        Balance, FaultKind, GuardConfig, Init, NumericPolicy, Partitioner, PrConfig, Scheduler,
        SimdPolicy,
    };
    pub use tempopr_stream::{
        run_streaming, run_streaming_durable, run_streaming_traced, IncrementalMode,
        StreamingConfig,
    };
    pub use tempopr_telemetry::{RunReport, Telemetry};
}
